/// Edge cases for logic/prenex and logic/nnf: variable shadowing (a bound
/// variable rebound in a nested scope) and vacuous quantification (a
/// quantifier whose body never mentions the bound variable — the closest a
/// quantifier gets to an "empty" body, alongside bodies that are the bare
/// constants `true`/`false`).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lqdb/eval/evaluator.h"
#include "lqdb/logic/builder.h"
#include "lqdb/logic/classify.h"
#include "lqdb/logic/nnf.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/prenex.h"
#include "lqdb/logic/printer.h"
#include "tests/testing.h"

namespace lqdb {
namespace {

/// A tiny fixed world {A, B} with P = {A} and R = {(A, B)} to decide the
/// truth of the sentences below.
struct World {
  World() : db(&vocab) {
    a = vocab.AddConstant("A");
    b = vocab.AddConstant("B");
    p = vocab.AddPredicate("P", 1).value();
    r = vocab.AddPredicate("R", 2).value();
    db.InterpretConstantsAsThemselves();
    EXPECT_TRUE(db.AddTuple(p, {a}).ok());
    EXPECT_TRUE(db.AddTuple(r, {a, b}).ok());
  }

  bool Holds(const FormulaPtr& f) {
    Evaluator eval(&db);
    auto result = eval.Satisfies(f);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() && result.value();
  }

  Vocabulary vocab;
  PhysicalDatabase db;
  ConstId a, b;
  PredId p, r;
};

/// Prenexing a sentence must not change its truth value in the world.
void ExpectPrenexPreserves(World* w, const std::string& text) {
  SCOPED_TRACE(text);
  auto f = ParseFormula(&w->vocab, text);
  ASSERT_TRUE(f.ok()) << f.status();
  auto prenexed = ToPrenex(&w->vocab, f.value());
  ASSERT_TRUE(prenexed.ok()) << prenexed.status();
  EXPECT_TRUE(ClassifyFoPrefix(prenexed.value()).prenex)
      << PrintFormula(w->vocab, prenexed.value());
  EXPECT_EQ(w->Holds(f.value()), w->Holds(prenexed.value()))
      << "prenexed: " << PrintFormula(w->vocab, prenexed.value());
}

/// NNF must not change the truth value either, and must satisfy IsNnf.
void ExpectNnfPreserves(World* w, const std::string& text) {
  SCOPED_TRACE(text);
  auto f = ParseFormula(&w->vocab, text);
  ASSERT_TRUE(f.ok()) << f.status();
  FormulaPtr nnf = ToNnf(f.value());
  EXPECT_TRUE(IsNnf(nnf)) << PrintFormula(w->vocab, nnf);
  EXPECT_EQ(w->Holds(f.value()), w->Holds(nnf))
      << "nnf: " << PrintFormula(w->vocab, nnf);
}

TEST(PrenexEdgeTest, ShadowedVariableInNestedQuantifier) {
  World w;
  // The inner `exists x` shadows the outer one; the outer x is only
  // constrained by P.
  ExpectPrenexPreserves(&w, "exists x. P(x) & (exists x. R(x, B))");
  ExpectPrenexPreserves(&w, "exists x. P(x) & (forall x. R(x, B))");
}

TEST(PrenexEdgeTest, DirectlyRenestedBinderIsInnerWins) {
  World w;
  // `forall x. exists x. P(x)` ≡ `exists x. P(x)` — the outer binder is
  // vacuous because the inner one captures every occurrence.
  ExpectPrenexPreserves(&w, "forall x. exists x. P(x)");
  ExpectPrenexPreserves(&w, "exists x. forall x. P(x)");
  ExpectPrenexPreserves(&w, "forall x. forall x. exists x. P(x)");

  // And the truth values are the inner quantifier's: P is non-empty but not
  // universal in the world.
  auto f1 = ParseFormula(&w.vocab, "forall x. exists x. P(x)");
  auto p1 = ToPrenex(&w.vocab, f1.value());
  EXPECT_TRUE(w.Holds(p1.value()));
  auto f2 = ParseFormula(&w.vocab, "exists x. forall x. P(x)");
  auto p2 = ToPrenex(&w.vocab, f2.value());
  EXPECT_FALSE(w.Holds(p2.value()));
}

TEST(PrenexEdgeTest, ShadowingAcrossNegationAndImplication) {
  World w;
  ExpectPrenexPreserves(&w, "!(exists x. P(x) & !(forall x. R(x, x)))");
  ExpectPrenexPreserves(&w,
                        "(exists x. P(x)) -> (exists x. R(x, B))");
  ExpectPrenexPreserves(&w,
                        "(forall x. P(x)) <-> (forall x. R(x, B))");
}

TEST(PrenexEdgeTest, VacuousQuantifierOverClosedBody) {
  World w;
  // The bound variable never occurs in the body.
  ExpectPrenexPreserves(&w, "exists x. true");
  ExpectPrenexPreserves(&w, "forall x. true");
  ExpectPrenexPreserves(&w, "exists x. false");
  ExpectPrenexPreserves(&w, "forall x. false");
  ExpectPrenexPreserves(&w, "exists x. P(A)");
  ExpectPrenexPreserves(&w, "forall x. R(A, B)");
  // Vacuous binder over a body quantifying the same name.
  ExpectPrenexPreserves(&w, "exists x. (exists x. P(x))");
}

TEST(PrenexEdgeTest, VacuousQuantifierKeepsFreeVariablesFree) {
  Vocabulary v;
  // y is free in the body of a quantifier that binds (only) x.
  auto f = ParseFormula(&v, "exists x. P(y)");
  ASSERT_TRUE(f.ok()) << f.status();
  auto prenexed = ToPrenex(&v, f.value());
  ASSERT_TRUE(prenexed.ok()) << prenexed.status();
  std::set<VarId> free = FreeVariables(prenexed.value());
  ASSERT_EQ(free.size(), 1u);
  EXPECT_TRUE(free.count(v.FindVariable("y")));
}

TEST(NnfEdgeTest, ShadowedVariablesSurviveNnf) {
  World w;
  ExpectNnfPreserves(&w, "!(exists x. P(x) & (exists x. !R(x, B)))");
  ExpectNnfPreserves(&w, "!(forall x. exists x. P(x))");
  ExpectNnfPreserves(&w, "(exists x. P(x)) <-> (forall x. exists x. P(x))");
}

TEST(NnfEdgeTest, VacuousQuantifiersSurviveNnf) {
  World w;
  ExpectNnfPreserves(&w, "!(exists x. true)");
  ExpectNnfPreserves(&w, "!(forall x. false)");
  ExpectNnfPreserves(&w, "!(exists x. P(A))");
  ExpectNnfPreserves(&w, "(forall x. true) -> (exists x. false)");
}

TEST(NnfEdgeTest, NnfIsIdempotentOnEdgeCases) {
  Vocabulary v;
  const char* cases[] = {
      "!(exists x. P(x) & (exists x. !R(x, B)))",
      "!(forall x. exists x. P(x))",
      "!(exists x. true)",
      "(forall x. true) <-> (exists x. false)",
  };
  for (const char* text : cases) {
    SCOPED_TRACE(text);
    auto f = ParseFormula(&v, text);
    ASSERT_TRUE(f.ok()) << f.status();
    FormulaPtr once = ToNnf(f.value());
    ASSERT_TRUE(IsNnf(once));
    FormulaPtr twice = ToNnf(once);
    EXPECT_EQ(PrintFormula(v, twice), PrintFormula(v, once));
  }
}

/// Random sentence whose binders are all named "x" or "y", so nested
/// quantifiers routinely rebind a name already in scope. `*shadowed` is set
/// when a binder was generated while its name was bound — the property
/// `RandomFormula` in tests/testing.h can never produce (its binder names
/// embed the strictly increasing depth).
FormulaPtr ShadowHeavyFormula(Rng* rng, World* w, int depth,
                              std::vector<std::string>* scope,
                              bool* shadowed) {
  FormulaBuilder b(&w->vocab);
  auto term = [&]() -> Term {
    if (!scope->empty() && rng->Chance(0.7)) {
      return b.V((*scope)[rng->Below(scope->size())]);
    }
    return Term::Constant(rng->Chance(0.5) ? w->a : w->b);
  };
  auto atom = [&]() -> FormulaPtr {
    switch (rng->Below(3)) {
      case 0: {
        TermList args;
        args.push_back(term());
        return Formula::Atom(w->p, std::move(args));
      }
      case 1: {
        TermList args;
        args.push_back(term());
        args.push_back(term());
        return Formula::Atom(w->r, std::move(args));
      }
      default:
        return b.Eq(term(), term());
    }
  };
  if (depth <= 0) return atom();
  auto recurse = [&]() {
    return ShadowHeavyFormula(rng, w, depth - 1, scope, shadowed);
  };
  switch (rng->Below(6)) {
    case 0:
      return atom();
    case 1:
      return Formula::And(recurse(), recurse());
    case 2:
      return Formula::Or(recurse(), recurse());
    case 3:
      return Formula::Not(recurse());
    default: {
      std::string v = rng->Chance(0.5) ? "x" : "y";
      if (std::find(scope->begin(), scope->end(), v) != scope->end()) {
        *shadowed = true;
      }
      scope->push_back(v);
      FormulaPtr body = recurse();
      scope->pop_back();
      return rng->Chance(0.5) ? b.Exists(v, std::move(body))
                              : b.Forall(v, std::move(body));
    }
  }
}

/// Randomized sweep: prenex + NNF preserve truth on sentences that rebind
/// the same two variable names over and over (heavy shadowing).
TEST(PrenexNnfEdgeTest, RandomShadowHeavyFormulasPreserveTruth) {
  int shadowed_count = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    World w;
    Rng rng(seed);
    std::vector<std::string> scope;
    bool shadowed = false;
    FormulaPtr f = ShadowHeavyFormula(&rng, &w, 5, &scope, &shadowed);
    if (shadowed) ++shadowed_count;

    FormulaPtr nnf = ToNnf(f);
    ASSERT_TRUE(IsNnf(nnf));
    auto prenexed = ToPrenex(&w.vocab, f);
    ASSERT_TRUE(prenexed.ok()) << prenexed.status();

    const bool direct = w.Holds(f);
    EXPECT_EQ(direct, w.Holds(nnf))
        << "seed " << seed << "\n  original: " << PrintFormula(w.vocab, f)
        << "\n  nnf: " << PrintFormula(w.vocab, nnf);
    EXPECT_EQ(direct, w.Holds(prenexed.value()))
        << "seed " << seed << "\n  original: " << PrintFormula(w.vocab, f)
        << "\n  prenexed: " << PrintFormula(w.vocab, prenexed.value());
  }
  // The sweep is only meaningful if shadowing actually occurred.
  EXPECT_GT(shadowed_count, 10);
}

}  // namespace
}  // namespace lqdb
