// E7 — Ablation: partition canonicalization of the Theorem 1 quantifier.
//
// Theorem 1 quantifies over *all* mappings h : C → C respecting the
// uniqueness axioms — |C|^|C| functions. Since first-/second-order
// satisfaction is isomorphism-invariant, only the kernel partition of h
// matters, so the library enumerates NE-avoiding partitions instead
// (Bell-number many). This bench quantifies the gap and verifies both
// routes return identical answers.
//
// Expected shape: identical answers; the function count dwarfs the
// partition count (and the runtime gap follows) as |C| grows.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

// Positive query with a nonempty certain answer: candidates survive every
// mapping, so neither evaluator can exit early — the table measures the
// full cost of the Theorem 1 universal quantification.
const char* kQuery = "(x) . P(x)";

std::unique_ptr<CwDatabase> MakeDb(int constants) {
  // Half known, half unknown — partitions and functions both in play.
  auto lb = std::make_unique<CwDatabase>();
  const int unknowns = constants / 2;
  for (int i = 0; i < unknowns; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  for (int i = 0; i < constants - unknowns; ++i) {
    lb->AddKnownConstant("K" + std::to_string(i));
  }
  PredId p = lb->AddPredicate("P", 1).value();
  (void)lb->AddFact(p, {static_cast<ConstId>(0)});           // P(U0)
  (void)lb->AddFact(p, {static_cast<ConstId>(unknowns)});    // P(K0)
  return lb;
}

void BM_CanonicalPartitions(benchmark::State& state) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  ExactEvaluator exact(lb.get());
  for (auto _ : state) {
    auto answer = exact.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(exact.last_mappings_examined());
}
BENCHMARK(BM_CanonicalPartitions)->DenseRange(4, 7, 1)
    ->Unit(benchmark::kMillisecond);

void BM_AllFunctions(benchmark::State& state) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  BruteForceEvaluator brute(lb.get());
  for (auto _ : state) {
    auto answer = brute.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(brute.last_mappings_examined());
}
BENCHMARK(BM_AllFunctions)->DenseRange(4, 6, 1)
    ->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE7: Theorem 1 mapping enumeration — partitions vs all "
      "functions\n"
      "query: %s\n\n",
      kQuery);
  TablePrinter table({"|C|", "|C|^|C| bound", "respecting fns",
                      "partitions", "canonical(s)", "brute(s)", "equal"});
  for (int constants : {4, 5, 6, 7}) {
    auto lb = MakeDb(constants);
    Query q = MustParse(lb.get(), kQuery);

    ExactEvaluator exact(lb.get());
    Relation canonical(0);
    double canonical_s =
        Seconds([&] { canonical = exact.Answer(q).value(); });

    BruteForceEvaluator brute(lb.get());
    Relation brute_answer(0);
    double brute_s =
        Seconds([&] { brute_answer = brute.Answer(q).value(); });

    double bound = 1;
    for (size_t i = 0; i < lb->num_constants(); ++i) {
      bound *= static_cast<double>(lb->num_constants());
    }
    table.AddRow({std::to_string(lb->num_constants()),
                  FormatDouble(bound, 0),
                  std::to_string(brute.last_mappings_examined()),
                  std::to_string(exact.last_mappings_examined()),
                  FormatDouble(canonical_s, 4), FormatDouble(brute_s, 4),
                  canonical == brute_answer ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; partition counts stay orders of\n"
      "magnitude below the function counts.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
