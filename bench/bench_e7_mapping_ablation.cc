// E7 — Ablation: partition canonicalization of the Theorem 1 quantifier.
//
// Theorem 1 quantifies over *all* mappings h : C → C respecting the
// uniqueness axioms — |C|^|C| functions. Since first-/second-order
// satisfaction is isomorphism-invariant, only the kernel partition of h
// matters, so the library enumerates NE-avoiding partitions instead
// (Bell-number many). This bench quantifies the gap and verifies both
// routes return identical answers.
//
// Expected shape: identical answers; the function count dwarfs the
// partition count (and the runtime gap follows) as |C| grows.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/engine/engine.h"
#include "lqdb/exact/brute.h"
#include "lqdb/exact/exact.h"
#include "lqdb/exact/parallel.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

// Positive query with a nonempty certain answer: candidates survive every
// mapping, so neither evaluator can exit early — the table measures the
// full cost of the Theorem 1 universal quantification.
const char* kQuery = "(x) . P(x)";

std::unique_ptr<CwDatabase> MakeDb(int constants) {
  // Half known, half unknown — partitions and functions both in play.
  auto lb = std::make_unique<CwDatabase>();
  const int unknowns = constants / 2;
  for (int i = 0; i < unknowns; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  for (int i = 0; i < constants - unknowns; ++i) {
    lb->AddKnownConstant("K" + std::to_string(i));
  }
  PredId p = lb->AddPredicate("P", 1).value();
  (void)lb->AddFact(p, {static_cast<ConstId>(0)});           // P(U0)
  (void)lb->AddFact(p, {static_cast<ConstId>(unknowns)});    // P(K0)
  return lb;
}

void BM_CanonicalPartitions(benchmark::State& state) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  ExactEvaluator exact(lb.get());
  for (auto _ : state) {
    auto answer = exact.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(exact.last_mappings_examined());
}
BENCHMARK(BM_CanonicalPartitions)->DenseRange(4, 7, 1)
    ->Unit(benchmark::kMillisecond);

/// The pre-batching inner loop, inlined as a baseline: one `SatisfiesWith`
/// per candidate per mapping, each rebuilding a `std::map` binding and
/// re-running the per-call validation — what `Evaluator::SatisfiesBatch`
/// replaced. Same database, query and pruning discipline as
/// `ExactEvaluator::Answer`, so the pair quantifies the batching win on
/// identical work within one JSON snapshot.
Relation PerCandidateAnswer(const CwDatabase& lb, const Query& q) {
  const size_t arity = q.arity();
  std::vector<Tuple> alive =
      AllCandidateTuples(arity, static_cast<ConstId>(lb.num_constants()));
  PhysicalDatabase image(&lb.vocab());
  Evaluator eval(&image);
  ForEachCanonicalMapping(lb, [&](const ConstMapping& h) {
    ApplyMappingInto(lb, h, &image);
    std::vector<Tuple> survivors;
    survivors.reserve(alive.size());
    for (const Tuple& c : alive) {
      std::map<VarId, Value> binding;
      for (size_t i = 0; i < arity; ++i) binding[q.head()[i]] = h[c[i]];
      auto sat = eval.SatisfiesWith(q.body(), binding);
      if (sat.ok() && sat.value()) survivors.push_back(c);
    }
    alive = std::move(survivors);
    return !alive.empty();
  });
  Relation answer(static_cast<int>(arity));
  for (Tuple& t : alive) answer.Insert(std::move(t));
  return answer;
}

void BM_PerCandidateBaseline(benchmark::State& state) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  for (auto _ : state) {
    Relation answer = PerCandidateAnswer(*lb, q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_PerCandidateBaseline)->DenseRange(4, 7, 1)
    ->Unit(benchmark::kMillisecond);

// The per-image inner loop head-to-head: the batched evaluator ("exact")
// vs the compiled relational-algebra plan ("ra-exact") on identical
// enumeration work. The two rows differ only in their registry name, so
// `tools/collect_bench.py` pairs "…/ra-exact/N" with "…/exact/N" within
// one snapshot and prints the speedup column.
void InnerLoopEngine(benchmark::State& state, const char* engine_name) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  auto engine = EngineRegistry::Global().Create(engine_name, lb.get()).value();
  for (auto _ : state) {
    auto answer = engine->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(engine->last_mappings_examined());
}
void BM_InnerLoopExact(benchmark::State& state) {
  InnerLoopEngine(state, "exact");
}
void BM_InnerLoopRaExact(benchmark::State& state) {
  InnerLoopEngine(state, "ra-exact");
}
BENCHMARK(BM_InnerLoopExact)->Name("BM_InnerLoop/exact")
    ->DenseRange(4, 7, 1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InnerLoopRaExact)->Name("BM_InnerLoop/ra-exact")
    ->DenseRange(4, 7, 1)->Unit(benchmark::kMillisecond);

void BM_AllFunctions(benchmark::State& state) {
  auto lb = MakeDb(static_cast<int>(state.range(0)));
  Query q = MustParse(lb.get(), kQuery);
  BruteForceEvaluator brute(lb.get());
  for (auto _ : state) {
    auto answer = brute.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(brute.last_mappings_examined());
}
BENCHMARK(BM_AllFunctions)->DenseRange(4, 6, 1)
    ->Unit(benchmark::kMillisecond);

// The canonical enumeration fanned across a thread pool at |C| = 9 (1540
// NE-avoiding partitions for this half-known shape): arg is the thread
// count, so the JSON records the scaling curve per host. Same query and
// database shape as BM_CanonicalPartitions, two sizes up, since the
// parallel engine targets exactly the sizes where the sequential walk
// starts to hurt.
void BM_ParallelCanonical(benchmark::State& state) {
  auto lb = MakeDb(9);
  Query q = MustParse(lb.get(), kQuery);
  ParallelExactOptions options;
  options.threads = static_cast<int>(state.range(0));
  ParallelExactEvaluator parallel(lb.get(), options);
  for (auto _ : state) {
    auto answer = parallel.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(parallel.last_mappings_examined());
  state.counters["threads"] = static_cast<double>(parallel.threads());
}
BENCHMARK(BM_ParallelCanonical)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void PrintSummaryTable() {
  std::printf(
      "\nE7: Theorem 1 mapping enumeration — partitions vs all "
      "functions\n"
      "query: %s\n\n",
      kQuery);
  TablePrinter table({"|C|", "|C|^|C| bound", "respecting fns",
                      "partitions", "canonical(s)", "brute(s)", "equal"});
  for (int constants : {4, 5, 6, 7}) {
    auto lb = MakeDb(constants);
    Query q = MustParse(lb.get(), kQuery);

    ExactEvaluator exact(lb.get());
    Relation canonical(0);
    double canonical_s =
        Seconds([&] { canonical = exact.Answer(q).value(); });

    BruteForceEvaluator brute(lb.get());
    Relation brute_answer(0);
    double brute_s =
        Seconds([&] { brute_answer = brute.Answer(q).value(); });

    double bound = 1;
    for (size_t i = 0; i < lb->num_constants(); ++i) {
      bound *= static_cast<double>(lb->num_constants());
    }
    table.AddRow({std::to_string(lb->num_constants()),
                  FormatDouble(bound, 0),
                  std::to_string(brute.last_mappings_examined()),
                  std::to_string(exact.last_mappings_examined()),
                  FormatDouble(canonical_s, 4), FormatDouble(brute_s, 4),
                  canonical == brute_answer ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; partition counts stay orders of\n"
      "magnitude below the function counts.\n\n");

  // Thread-scaling table for the parallel engine at |C| = 9. On a
  // single-core host the ≥2-thread rows degenerate to ~1x — the JSON
  // records whatever the hardware gives.
  std::printf("E7b: parallel canonical enumeration, |C| = 9\n\n");
  auto lb = MakeDb(9);
  Query q = MustParse(lb.get(), kQuery);
  ExactEvaluator exact(lb.get());
  Relation sequential_answer(0);
  double sequential_s =
      Seconds([&] { sequential_answer = exact.Answer(q).value(); });
  TablePrinter threads_table(
      {"threads", "partitions", "time(s)", "speedup", "equal"});
  threads_table.AddRow({"1 (sequential)",
                        std::to_string(exact.last_mappings_examined()),
                        FormatDouble(sequential_s, 4), "1.00x", "yes"});
  for (int threads : {1, 2, 4, 8}) {
    ParallelExactOptions options;
    options.threads = threads;
    ParallelExactEvaluator parallel(lb.get(), options);
    Relation answer(0);
    double t = Seconds([&] { answer = parallel.Answer(q).value(); });
    threads_table.AddRow(
        {std::to_string(threads),
         std::to_string(parallel.last_mappings_examined()),
         FormatDouble(t, 4),
         FormatDouble(t > 0 ? sequential_s / t : 0.0, 2) + "x",
         answer == sequential_answer ? "yes" : "NO"});
  }
  std::printf("%s", threads_table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers at every thread count; speedup\n"
      "approaches the core count on multi-core hosts.\n\n");

  // Batched per-image candidate sweep vs the pre-batching loop (one
  // SatisfiesWith + std::map binding per candidate per mapping).
  std::printf("E7c: batched candidate sweep vs per-candidate loop\n\n");
  TablePrinter batch_table({"|C|", "batched(s)", "per-candidate(s)",
                            "speedup", "equal"});
  for (int constants : {5, 6, 7, 8}) {
    auto batched_lb = MakeDb(constants);
    Query batched_q = MustParse(batched_lb.get(), kQuery);
    ExactEvaluator engine(batched_lb.get());
    Relation batched(0);
    double batched_s = Seconds([&] { batched = engine.Answer(batched_q).value(); });
    Relation legacy(0);
    double legacy_s =
        Seconds([&] { legacy = PerCandidateAnswer(*batched_lb, batched_q); });
    batch_table.AddRow(
        {std::to_string(batched_lb->num_constants()),
         FormatDouble(batched_s, 4), FormatDouble(legacy_s, 4),
         FormatDouble(batched_s > 0 ? legacy_s / batched_s : 0.0, 2) + "x",
         batched == legacy ? "yes" : "NO"});
  }
  std::printf("%s", batch_table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; batching wins and the gap widens\n"
      "with the candidate count (|C| here, since the query head is unary).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
