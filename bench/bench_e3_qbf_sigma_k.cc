// E3 — Theorem 7: Σₖ combined complexity climbs the polynomial hierarchy.
//
// Evaluating Σₖ first-order queries over CW logical databases is
// Πᵖₖ₊₁-complete: one alternation level is paid to the hidden universal
// quantification over mappings, the rest to the query's own quantifier
// prefix. The reduction from B_{k+1} QBFs is executable; this bench sweeps
// the number of alternation blocks and cross-checks a direct QBF solver.
//
// Expected shape: answers agree on every instance; reduction cost grows
// both with the universal block width (more unknown constants → more
// mappings) and with k (deeper first-order quantifier nesting).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/reductions/qbf.h"
#include "lqdb/reductions/qbf_reduction.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

std::vector<int> ShapeFor(int k, int width) {
  std::vector<int> blocks(k + 1, width);
  return blocks;
}

void BM_ReductionEval(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  Qbf qbf = RandomQbf(ShapeFor(k, width), 8, /*seed=*/13 * k + width);
  auto red = BuildQbfReduction(qbf).value();
  ExactEvaluator exact(&red.lb);
  for (auto _ : state) {
    auto certain = exact.Contains(red.query, {});
    benchmark::DoNotOptimize(certain);
  }
  state.counters["mappings"] =
      static_cast<double>(exact.last_mappings_examined());
}
BENCHMARK(BM_ReductionEval)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void BM_DirectQbfSolver(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int width = static_cast<int>(state.range(1));
  Qbf qbf = RandomQbf(ShapeFor(k, width), 8, /*seed=*/13 * k + width);
  for (auto _ : state) {
    bool value = EvalQbf(qbf);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_DirectQbfSolver)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE3: Sigma_k query evaluation vs the polynomial hierarchy "
      "(Theorem 7)\n"
      "B_{k+1} QBF -> CW database + Sigma_k first-order query\n\n");
  TablePrinter table({"k (Sigma_k)", "block width", "instances", "agree",
                      "true QBFs", "avg logic(s)", "avg solver(s)"});
  for (int k = 0; k <= 2; ++k) {
    for (int width : {2, 3}) {
      int agree = 0, truths = 0;
      const int kInstances = 6;
      double logic_total = 0, solver_total = 0;
      for (int inst = 0; inst < kInstances; ++inst) {
        Qbf qbf = RandomQbf(ShapeFor(k, width), 8,
                            /*seed=*/100 * k + 10 * width + inst);
        auto red = BuildQbfReduction(qbf).value();
        // Sanity: the reduction really produces a Σₖ query.
        if (k > 0 && !InSigmaFoK(red.query.body(), k)) continue;
        ExactEvaluator exact(&red.lb);
        bool by_logic = false;
        logic_total += Seconds([&] {
          by_logic = exact.Contains(red.query, {}).value();
        });
        bool by_solver = false;
        solver_total += Seconds([&] { by_solver = EvalQbf(qbf); });
        if (by_logic == by_solver) ++agree;
        if (by_solver) ++truths;
      }
      table.AddRow({std::to_string(k), std::to_string(width),
                    std::to_string(kInstances),
                    std::to_string(agree) + "/" + std::to_string(kInstances),
                    std::to_string(truths),
                    FormatDouble(logic_total / kInstances, 4),
                    FormatDouble(solver_total / kInstances, 4)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: full agreement; logic cost grows with both k and the\n"
      "universal width (the mapping quantification simulates the leading "
      "forall block).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
