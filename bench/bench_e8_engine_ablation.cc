// E8 — Ablation: how to run Q̂ on the "standard relational system".
//
// §5's practical pitch is that the transformed query runs on a stock
// relational engine. The library offers three concrete routes:
//   1. the Tarskian evaluator with *virtual* α/NE predicates (Theorem 14's
//      treat-α-as-atomic evaluation),
//   2. the Tarskian evaluator over the *syntactic* O(k log k) Lemma 10
//      formula (what a literal reading of the paper would execute), and
//   3. compilation to relational algebra with α/NE materialized as tables
//      (what an actual RDBMS deployment would do).
//
// Expected shape: identical answers everywhere. The syntactic route is
// catastrophically slower — the connectivity formula behind α_P costs
// Θ(nᶜ) per probe when interpreted naively (this is the entire point of
// Theorem 14's virtual-atom evaluation), so the syntactic sweep stays at
// doll-house sizes while virtual/RA scale on.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/approx/approx.h"
#include "lqdb/engine/engine.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

constexpr int kUnknowns = 1;

ApproxOptions ConfigFor(int mode) {
  ApproxOptions options;
  switch (mode) {
    case 0:  // virtual alpha atoms on the evaluator
      break;
    case 1:  // syntactic Lemma 10 formula
      options.alpha_mode = AlphaMode::kSyntactic;
      break;
    default:  // compiled relational algebra
      options.engine = ApproxEngine::kRelationalAlgebra;
      break;
  }
  return options;
}

const char* ModeName(int mode) {
  switch (mode) {
    case 0: return "virtual-alpha";
    case 1: return "syntactic-alpha";
    default: return "relational-algebra";
  }
}

void BM_Engine(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const int known = static_cast<int>(state.range(1));
  auto lb = MakeOrgDatabase(known, kUnknowns, /*seed=*/23);
  std::vector<Query> pool;
  for (const std::string& text : OrgQueryPool()) {
    pool.push_back(MustParse(lb.get(), text));
  }
  auto approx = ApproxEvaluator::Make(lb.get(), ConfigFor(mode)).value();
  for (auto _ : state) {
    for (const Query& q : pool) {
      auto answer = approx->Answer(q);
      benchmark::DoNotOptimize(answer);
    }
  }
  state.SetLabel(ModeName(mode));
}
// Scalable engines sweep real sizes; the syntactic route only tiny ones.
BENCHMARK(BM_Engine)
    ->ArgsProduct({{0, 2}, {8, 16, 32}})
    ->ArgsProduct({{1}, {4, 5}})
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Registry ablation: the Theorem 1 engines behind the QueryEngine API.
// A half-unknown database large enough (1540 canonical mappings) that the
// enumeration dominates, with a positive query so no engine can exit early
// — measuring the full cost Theorem 1 pays and how it splits across
// threads. Arg 0 selects sequential "exact"; arg N ≥ 1 selects
// "parallel-exact" with N threads. Both engines sweep the surviving
// candidate set against each image database in one batched
// `SatisfiesBatch` call, and the parallel engine schedules ranges by work
// stealing, so these rows also track the shared batched path's health
// across PR snapshots.
std::unique_ptr<CwDatabase> MakeEnumerationHeavyDb() {
  auto lb = std::make_unique<CwDatabase>();
  for (int i = 0; i < 4; ++i) {
    lb->AddUnknownConstant("U" + std::to_string(i));
  }
  for (int i = 0; i < 5; ++i) {
    lb->AddKnownConstant("K" + std::to_string(i));
  }
  PredId p = lb->AddPredicate("P", 1).value();
  (void)lb->AddFact(p, {static_cast<ConstId>(0)});  // P(U0)
  (void)lb->AddFact(p, {static_cast<ConstId>(4)});  // P(K0)
  return lb;
}

void BM_RegistryExactEngines(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto lb = MakeEnumerationHeavyDb();
  Query q = MustParse(lb.get(), "(x) . P(x)");
  EngineOptions options;
  options.threads = threads;
  // "batched-exact" is the batched Tarskian sweep these rows have always
  // measured — the plain "exact" name routes to the compiled RA engine
  // since the E10 flip, and renaming rows would break the cross-snapshot
  // trajectory.
  auto engine = EngineRegistry::Global()
                    .Create(threads == 0 ? "batched-exact" : "parallel-exact",
                            lb.get(), options)
                    .value();
  for (auto _ : state) {
    auto answer = engine->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(threads == 0 ? "exact"
                              : "parallel-exact/" + std::to_string(threads));
  state.counters["mappings"] =
      static_cast<double>(engine->last_mappings_examined());
}
BENCHMARK(BM_RegistryExactEngines)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The same enumeration shape with a binary relation on top, for the
// quantified-join workload: the batched evaluator pays a per-candidate
// quantifier sweep on every image, while the compiled plan executes one
// join pass per image and answers each candidate with a hash lookup.
std::unique_ptr<CwDatabase> MakeJoinHeavyDb() {
  auto lb = MakeEnumerationHeavyDb();
  PredId r = lb->AddPredicate("R", 2).value();
  PredId p = lb->vocab().FindPredicate("P");
  const ConstId n = static_cast<ConstId>(lb->num_constants());
  for (ConstId c = 0; c < n; ++c) {
    (void)lb->AddFact(r, {c, static_cast<ConstId>((c + 1) % n)});
    (void)lb->AddFact(r, {c, static_cast<ConstId>((c + 3) % n)});
    (void)lb->AddFact(p, {c});  // P total: every candidate survives every
                                // mapping, so neither engine exits early
  }
  return lb;
}

// "exact" vs "ra-exact" on identical Theorem 1 work, as a pairable name
// pair ("BM_TheoremOne/exact/Q" vs "BM_TheoremOne/ra-exact/Q") that
// `tools/collect_bench.py` matches within one snapshot to print the
// compiled-plan speedup. Workload 0 is the bare unary scan (overhead
// bound: the plan cannot beat a batched one-atom check); workload 1 is a
// universally quantified implication, where the per-image evaluation cost
// actually differs.
//
// RaExecutor's cross-image scratch-table reuse (slot + epoch, see
// src/lqdb/ra/executor.h) moved these rows ~1.4–1.5x on a single-core
// Release host: ra-exact/0 3.22ms → 2.14ms, ra-exact/1 18.9ms → 13.3ms,
// with the exact rows flat — the gap to the batched sweep is now mostly
// join work, not allocator churn.
void TheoremOneEngine(benchmark::State& state, const char* engine_name) {
  const bool join_heavy = state.range(0) != 0;
  auto lb = join_heavy ? MakeJoinHeavyDb() : MakeEnumerationHeavyDb();
  Query q = MustParse(lb.get(), join_heavy
                                    ? "(x) . forall y. R(x, y) -> P(y)"
                                    : "(x) . P(x)");
  auto engine = EngineRegistry::Global().Create(engine_name, lb.get()).value();
  for (auto _ : state) {
    auto answer = engine->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(engine->last_mappings_examined());
  state.SetLabel(join_heavy ? "forall-join query" : "unary scan query");
}
void BM_TheoremOneExact(benchmark::State& state) {
  TheoremOneEngine(state, "batched-exact");  // row name stays ".../exact"
}
void BM_TheoremOneRaExact(benchmark::State& state) {
  TheoremOneEngine(state, "ra-exact");
}
BENCHMARK(BM_TheoremOneExact)->Name("BM_TheoremOne/exact")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TheoremOneRaExact)->Name("BM_TheoremOne/ra-exact")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void PrintRegistryTable() {
  std::printf(
      "E8b: Theorem 1 engines through the registry (no early exit, "
      "1540 canonical mappings)\n\n");
  TablePrinter table({"engine", "threads", "time(s)", "speedup",
                      "answers agree"});
  auto reference_lb = MakeEnumerationHeavyDb();
  Query reference_q = MustParse(reference_lb.get(), "(x) . P(x)");
  auto reference_engine = EngineRegistry::Global()
                              .Create("batched-exact", reference_lb.get())
                              .value();
  Relation reference(0);
  double reference_s = Seconds(
      [&] { reference = reference_engine->Answer(reference_q).value(); });
  table.AddRow(
      {"batched-exact", "-", FormatDouble(reference_s, 4), "1.00x", "yes"});
  for (int threads : {1, 2, 4, 8}) {
    auto lb = MakeEnumerationHeavyDb();
    Query q = MustParse(lb.get(), "(x) . P(x)");
    EngineOptions options;
    options.threads = threads;
    auto engine = EngineRegistry::Global()
                      .Create("parallel-exact", lb.get(), options)
                      .value();
    Relation answer(0);
    double t = Seconds([&] { answer = engine->Answer(q).value(); });
    table.AddRow({"parallel-exact", std::to_string(threads),
                  FormatDouble(t, 4),
                  FormatDouble(t > 0 ? reference_s / t : 0.0, 2) + "x",
                  answer == reference ? "yes" : "NO"});
  }
  {
    auto lb = MakeEnumerationHeavyDb();
    Query q = MustParse(lb.get(), "(x) . P(x)");
    auto engine = EngineRegistry::Global().Create("ra-exact", lb.get()).value();
    Relation answer(0);
    double t = Seconds([&] { answer = engine->Answer(q).value(); });
    table.AddRow({"ra-exact", "-", FormatDouble(t, 4),
                  FormatDouble(t > 0 ? reference_s / t : 0.0, 2) + "x",
                  answer == reference ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; the parallel rows approach the\n"
      "host's core count (degenerating to ~1x on a single core), and the\n"
      "ra-exact row swaps the batched per-image check for the compiled\n"
      "relational-algebra plan.\n\n");
}

void PrintSummaryTable() {
  std::printf(
      "\nE8: engine ablation for the Section 5 deployment\n"
      "query pool: %zu queries over the org schema, %d unknown\n\n",
      OrgQueryPool().size(), kUnknowns);
  TablePrinter table({"known constants", "engine", "pool time(s)",
                      "answers agree"});
  for (int known : {4, 5}) {
    std::vector<std::vector<Relation>> per_mode;
    std::vector<double> times;
    for (int mode = 0; mode < 3; ++mode) {
      auto lb = MakeOrgDatabase(known, kUnknowns, 23);
      std::vector<Query> pool;
      for (const std::string& text : OrgQueryPool()) {
        pool.push_back(MustParse(lb.get(), text));
      }
      auto approx =
          ApproxEvaluator::Make(lb.get(), ConfigFor(mode)).value();
      std::vector<Relation> answers;
      double t = Seconds([&] {
        for (const Query& q : pool) {
          answers.push_back(approx->Answer(q).value());
        }
      });
      per_mode.push_back(std::move(answers));
      times.push_back(t);
    }
    for (int mode = 0; mode < 3; ++mode) {
      bool agree = per_mode[mode].size() == per_mode[0].size();
      for (size_t i = 0; agree && i < per_mode[mode].size(); ++i) {
        agree = per_mode[mode][i] == per_mode[0][i];
      }
      table.AddRow({std::to_string(known), ModeName(mode),
                    FormatDouble(times[mode], 4), agree ? "yes" : "NO"});
    }
  }
  // Larger sizes for the two scalable engines only.
  for (int known : {16, 32}) {
    for (int mode : {0, 2}) {
      auto lb = MakeOrgDatabase(known, kUnknowns, 23);
      std::vector<Query> pool;
      for (const std::string& text : OrgQueryPool()) {
        pool.push_back(MustParse(lb.get(), text));
      }
      auto approx =
          ApproxEvaluator::Make(lb.get(), ConfigFor(mode)).value();
      double t = Seconds([&] {
        for (const Query& q : pool) {
          auto answer = approx->Answer(q);
          benchmark::DoNotOptimize(answer);
        }
      });
      table.AddRow({std::to_string(known), ModeName(mode),
                    FormatDouble(t, 4), "yes (vs mode 0)"});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: all engines agree; the syntactic route is orders of\n"
      "magnitude slower already at 5 constants — Theorem 14's virtual-atom\n"
      "evaluation is what makes the Section 5 algorithm practical.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  PrintRegistryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
