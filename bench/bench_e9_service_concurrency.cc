// E9 — The service layer: prepared-statement reuse and concurrent
// sessions.
//
// Two claims to keep honest across PR snapshots:
//   1. Prepared execution pays for preparation once: a warm
//      `Prepare` (cache hit) + `Execute` must be measurably faster than a
//      cold service preparing the same text (parse + bind + RA-compile,
//      plus service construction — the real cold-start a client sees).
//      The pairable names BM_ServicePrepare/{cold,warm}/* make the gap a
//      one-line diff in tools/collect_bench.py.
//   2. Sessions scale: K sessions executing cache-hit statements
//      concurrently share one immutable database under a reader lock, so
//      per-iteration wall time should grow sublinearly in K up to the
//      host's core count (1/2/8-session rows, UseRealTime).
//
// The per-execution work itself also got cheaper this PR: RaExecutor now
// reuses its per-plan-node hash tables across images instead of
// reallocating them per `Execute` (see src/lqdb/ra/executor.h for the E8
// before/after numbers on the 1540-image enumeration).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "lqdb/service/service.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

constexpr int kKnown = 16;
constexpr int kUnknowns = 1;
constexpr uint64_t kSeed = 23;

const char* EngineFor(int arg) { return arg == 0 ? "exact" : "ra-exact"; }

// Cold path: every iteration stands up a fresh service (empty cache, new
// 1-thread pool) and prepares + executes one pool query — parse, bind and
// RA-compile all run. This is the cost the cache exists to amortize.
void BM_ServicePrepareCold(benchmark::State& state) {
  auto lb = MakeOrgDatabase(kKnown, kUnknowns, kSeed);
  // Intern every query's names once so each cold service parses an
  // identical vocabulary (parse order must not change constant ids).
  {
    Service warmup(lb.get(), {/*threads=*/1});
    auto session = warmup.OpenSession().value();
    for (const std::string& text : OrgQueryPool()) {
      auto info = session->Prepare(text);
      benchmark::DoNotOptimize(info);
    }
  }
  const std::vector<std::string> pool = OrgQueryPool();
  SessionOptions opts;
  opts.engine = EngineFor(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    Service cold(lb.get(), {/*threads=*/1});
    auto session = cold.OpenSession(opts).value();
    auto info = session->Prepare(pool[i++ % pool.size()]).value();
    auto answer = session->Execute(info.handle);
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(opts.engine);
}
BENCHMARK(BM_ServicePrepareCold)->Name("BM_ServicePrepare/cold")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Warm path: same statements through one long-lived service — every
// Prepare is a cache hit and Execute runs the pre-bound, pre-compiled
// statement.
void BM_ServicePrepareWarm(benchmark::State& state) {
  auto lb = MakeOrgDatabase(kKnown, kUnknowns, kSeed);
  Service service(lb.get(), {/*threads=*/1});
  SessionOptions opts;
  opts.engine = EngineFor(static_cast<int>(state.range(0)));
  auto session = service.OpenSession(opts).value();
  const std::vector<std::string> pool = OrgQueryPool();
  for (const std::string& text : pool) {
    auto info = session->Prepare(text);
    benchmark::DoNotOptimize(info);
  }
  size_t i = 0;
  for (auto _ : state) {
    auto info = session->Prepare(pool[i++ % pool.size()]).value();
    auto answer = session->Execute(info.handle);
    benchmark::DoNotOptimize(answer);
  }
  state.SetLabel(opts.engine);
  ServiceStats stats = service.stats();
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
}
BENCHMARK(BM_ServicePrepareWarm)->Name("BM_ServicePrepare/warm")
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// K sessions fan one async execution each onto the shared pool per
// iteration (round-robin over the query pool), then join. Real time, so
// the 8-session row shows how far the shared-database reader lock lets the
// sessions actually overlap.
void BM_ServiceSessions(benchmark::State& state) {
  const int num_sessions = static_cast<int>(state.range(0));
  const char* engine = EngineFor(static_cast<int>(state.range(1)));
  auto lb = MakeOrgDatabase(kKnown, kUnknowns, kSeed);
  Service service(lb.get());
  SessionOptions opts;
  opts.engine = engine;
  opts.max_in_flight = 8;
  std::vector<std::shared_ptr<Session>> sessions;
  for (int i = 0; i < num_sessions; ++i) {
    sessions.push_back(service.OpenSession(opts).value());
  }
  std::vector<PreparedHandle> handles;
  for (const std::string& text : OrgQueryPool()) {
    handles.push_back(sessions[0]->Prepare(text).value().handle);
  }
  size_t i = 0;
  for (auto _ : state) {
    std::vector<AsyncExecution> pending;
    pending.reserve(sessions.size());
    for (const std::shared_ptr<Session>& session : sessions) {
      pending.push_back(
          session->ExecuteAsync(handles[i++ % handles.size()]).value());
    }
    for (AsyncExecution& execution : pending) {
      auto answer = execution.result.get();
      benchmark::DoNotOptimize(answer);
    }
  }
  state.SetItemsProcessed(state.iterations() * num_sessions);
  state.SetLabel(std::string(engine) + "/" + std::to_string(num_sessions) +
                 " sessions");
}
BENCHMARK(BM_ServiceSessions)
    ->ArgsProduct({{1, 2, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void PrintServiceTable() {
  std::printf(
      "E9: query service — prepared-statement cache and session "
      "concurrency\norg database: %d known constants, %d unknown; pool of "
      "%zu arity-1 queries\n\n",
      kKnown, kUnknowns, OrgQueryPool().size());
  TablePrinter table({"engine", "cold prep+exec(s)", "warm prep+exec(s)",
                      "speedup", "answers agree"});
  for (const char* engine : {"exact", "ra-exact"}) {
    auto lb = MakeOrgDatabase(kKnown, kUnknowns, kSeed);
    SessionOptions opts;
    opts.engine = engine;
    std::vector<Relation> cold_answers, warm_answers;
    double cold_s = Seconds([&] {
      Service cold(lb.get(), {/*threads=*/1});
      auto session = cold.OpenSession(opts).value();
      for (const std::string& text : OrgQueryPool()) {
        auto info = session->Prepare(text).value();
        cold_answers.push_back(session->Execute(info.handle).value());
      }
    });
    Service warm_service(lb.get(), {/*threads=*/1});
    auto warm_session = warm_service.OpenSession(opts).value();
    for (const std::string& text : OrgQueryPool()) {
      auto info = warm_session->Prepare(text);
      benchmark::DoNotOptimize(info);
    }
    double warm_s = Seconds([&] {
      for (const std::string& text : OrgQueryPool()) {
        auto info = warm_session->Prepare(text).value();
        warm_answers.push_back(warm_session->Execute(info.handle).value());
      }
    });
    bool agree = cold_answers.size() == warm_answers.size();
    for (size_t i = 0; agree && i < cold_answers.size(); ++i) {
      agree = cold_answers[i] == warm_answers[i];
    }
    table.AddRow({engine, FormatDouble(cold_s, 4), FormatDouble(warm_s, 4),
                  FormatDouble(warm_s > 0 ? cold_s / warm_s : 0.0, 2) + "x",
                  agree ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; the warm column drops the parse +\n"
      "bind + RA-compile (and service construction) that the cold column\n"
      "pays per query, so its speedup column must stay > 1.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintServiceTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
