// E1 — Data complexity: LOGSPACE (physical) vs co-NP (logical).
//
// Paper claims reproduced (DESIGN.md §4, EXPERIMENTS.md E1):
//   * Theorem 4(1): first-order data complexity over *physical* databases
//     is in LOGSPACE — evaluation cost is polynomial in the database and
//     does not depend on how many values are unknown.
//   * Theorem 5(1)+(2): over CW *logical* databases, evaluation is
//     co-NP-complete — the Theorem 1 algorithm enumerates NE-avoiding
//     partitions, exponential in the number of unknown values.
//   * Theorem 14: the §5 approximation tracks the physical cost.
//
// The query is Boolean and *certain*, so the exact evaluator cannot bail
// out early: it pays the full universal quantification over mappings —
// exactly the hidden quantifier the paper blames for the complexity jump.
//
// Expected shape: 'partitions' and the exact column explode with the
// number of unknowns while the physical/approximate columns stay flat.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/mapping.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/exact/exact.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

constexpr int kKnown = 8;
// Certain Boolean sentence: every senior employee sits in some department.
const char* kQuery = "forall x. SENIOR(x) -> (exists d. EMP_DEPT(x, d))";

void BM_ExactEval(benchmark::State& state) {
  const int unknowns = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(kKnown, unknowns, /*seed=*/1);
  Query q = MustParse(lb.get(), kQuery);
  ExactEvaluator exact(lb.get());
  uint64_t mappings = 0;
  for (auto _ : state) {
    auto answer = exact.Contains(q, {});
    benchmark::DoNotOptimize(answer);
    mappings = exact.last_mappings_examined();
  }
  state.counters["mappings"] = static_cast<double>(mappings);
}
BENCHMARK(BM_ExactEval)->DenseRange(0, 4, 1)->Unit(benchmark::kMillisecond);

void BM_ApproxEval(benchmark::State& state) {
  const int unknowns = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(kKnown, unknowns, /*seed=*/1);
  Query q = MustParse(lb.get(), kQuery);
  auto approx = ApproxEvaluator::Make(lb.get()).value();
  for (auto _ : state) {
    auto answer = approx->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ApproxEval)->DenseRange(0, 4, 1)->Unit(benchmark::kMillisecond);

void BM_PhysicalEval(benchmark::State& state) {
  const int unknowns = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(kKnown, unknowns, /*seed=*/1);
  Query q = MustParse(lb.get(), kQuery);
  PhysicalDatabase ph1 = MakePh1(*lb);
  Evaluator eval(&ph1);
  for (auto _ : state) {
    auto answer = eval.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_PhysicalEval)->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE1: data complexity of first-order query evaluation\n"
      "query: %s\n"
      "fixed %d known constants; sweeping unknown (null) values\n\n",
      kQuery, kKnown);
  TablePrinter table({"unknowns", "partitions", "exact(s)", "approx(s)",
                      "physical(s)", "exact/physical"});
  for (int u = 0; u <= 5; ++u) {
    auto lb = MakeOrgDatabase(kKnown, u, 1);
    Query q = MustParse(lb.get(), kQuery);
    uint64_t partitions = CountCanonicalMappings(*lb);

    ExactEvaluator exact(lb.get());
    double exact_s = Seconds([&] { (void)exact.Contains(q, {}); });

    auto approx = ApproxEvaluator::Make(lb.get()).value();
    double approx_s = Seconds([&] { (void)approx->Answer(q); });

    PhysicalDatabase ph1 = MakePh1(*lb);
    Evaluator eval(&ph1);
    double physical_s = Seconds([&] { (void)eval.Answer(q); });

    table.AddRow({std::to_string(u), std::to_string(partitions),
                  FormatDouble(exact_s, 4), FormatDouble(approx_s, 4),
                  FormatDouble(physical_s, 4),
                  FormatDouble(exact_s / std::max(physical_s, 1e-9), 1)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: 'partitions' and 'exact(s)' grow exponentially with\n"
      "unknowns; 'approx(s)' and 'physical(s)' stay flat (Thm 5 vs Thm "
      "14).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
