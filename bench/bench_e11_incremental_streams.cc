// E11 — Incremental re-evaluation: kernel-class verdict memoization and
// the relation-keyed result cache under three client streams.
//
// The streams, each run twice — `/reuse` (kernel memo + result cache on,
// the defaults) against `/baseline` (both off) — on identical scenario
// worlds (src/lqdb/gen/scenario.h), sparse enough that most constants
// appear in no fact (one big interchangeability class, the memo's
// compression source):
//
//   - `repeated`:  the same query pool replayed round after round with no
//     updates in between. Reuse serves every round after the first from
//     the result cache; the claimed floor is 2x.
//   - `perturbed`: a pool of *distinct* query texts (per-constant
//     variants), each executed afresh — the result cache is off for both
//     sides here, so the row isolates the within-query kernel memo:
//     signature-equivalent mappings evaluate once instead of per mapping.
//   - `updates`:   single-fact assert/retract interleaved with the query
//     pool. Only the queries reading the updated relation recompute;
//     the rest keep hitting the result cache, so reuse cost grows with
//     the dependent subset, not the stream length.
//
// Before timing, every stream's reuse and baseline answers are compared
// tuple for tuple on a fresh service pair — a diverging memo is a bug, and
// the bench refuses to produce numbers for it (SkipWithError).
//
// The JSON rows carry `result_hit_rate` / `memo_hit_rate` counters;
// tools/collect_bench.py --require-e11-hits asserts they are nonzero so a
// refactor cannot silently wedge the caches shut and still pass CI.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "lqdb/gen/scenario.h"
#include "lqdb/relational/relation.h"
#include "lqdb/service/service.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

constexpr uint64_t kSeed = 29;
// Pool replays per iteration. Even, so the update stream's assert/retract
// toggle is balanced: every iteration ends with the fact retracted and the
// database back in its original state.
constexpr int kRounds = 4;

ScenarioParams SparseParams() {
  ScenarioParams params;
  // Small enough that the exact engine's canonical-mapping sweep (two
  // unknowns over ~33 constants, ~1e3 mappings) stays in the millisecond
  // range per query; sparse enough (8 facts per relation over 32 known
  // constants) that a handful of constants appear in no fact and collapse
  // into one interchangeability class — the kernel memo's compression
  // source.
  params.num_known = 32;
  params.num_unknown = 2;
  params.num_unary = 2;
  params.num_binary = 2;
  params.facts_per_relation = 8;
  params.unknown_ref_rate = 0.15;
  params.distinct_pair_rate = 0.05;
  return params;
}

/// The repeated/updates streams replay the scenario pool; the perturbed
/// stream needs texts that never repeat an earlier cache key, so it takes
/// per-constant variants of the guarded-universal query.
std::vector<std::string> PerturbedPool() {
  std::vector<std::string> pool;
  for (int i = 0; i < 6; ++i) {
    const std::string k = "k" + std::to_string(i);
    pool.push_back("(x) . !(x = " + k + ") & (forall y. R0(x, y) -> P0(y))");
  }
  return pool;
}

std::shared_ptr<Session> OpenStreamSession(Service& service, bool reuse) {
  SessionOptions options;
  options.engine = "exact";
  options.use_result_cache = reuse;
  options.engine_options.exact.memo = reuse;
  options.engine_options.brute.memo = reuse;
  return service.OpenSession(std::move(options)).value();
}

/// One assert/retract pair per round on a tuple that is guaranteed absent
/// initially (removed at setup if the generator produced it): the database
/// returns to its original facts after every round.
struct UpdateToggle {
  std::string pred = "R1";
  std::vector<std::string> names = {"k0", "k1"};
};

/// Runs `rounds` replays of `pool` on `session`, toggling a fact between
/// replays when `toggle` is set. Returns false on any execution error.
bool RunStream(Service& service, Session& session,
               const std::vector<std::string>& pool, int rounds,
               const UpdateToggle* toggle) {
  for (int round = 0; round < rounds; ++round) {
    if (toggle != nullptr) {
      const Status status =
          round % 2 == 0 ? service.Assert(toggle->pred, toggle->names)
                         : service.Retract(toggle->pred, toggle->names);
      if (!status.ok()) return false;
    }
    for (const std::string& text : pool) {
      auto answer = session.Query(text);
      if (!answer.ok()) return false;
      benchmark::DoNotOptimize(answer);
    }
  }
  return true;
}

/// Fresh world with the toggled tuple removed, so assert/retract pairs are
/// always well-formed and the stream is deterministic.
std::unique_ptr<CwDatabase> MakeStreamWorld() {
  auto lb = MakeScenario(kSeed, SparseParams());
  const PredId r1 = lb->vocab().FindPredicate("R1");
  const ConstId k0 = lb->vocab().FindConstant("k0");
  const ConstId k1 = lb->vocab().FindConstant("k1");
  Status removed = lb->RemoveFact(r1, Tuple{k0, k1});
  (void)removed;  // NotFound is fine: the tuple just was not generated
  return lb;
}

/// Answer-agreement gate: replays `stream` on two fresh service pairs —
/// reuse and baseline — and compares every answer. `toggle` mirrors the
/// timed stream so the gate covers the exact call sequence being timed.
bool StreamsAgree(const std::vector<std::string>& pool,
                  const UpdateToggle* toggle, std::string* diff) {
  auto reuse_lb = MakeStreamWorld();
  auto base_lb = MakeStreamWorld();
  Service reuse_service(reuse_lb.get(), {/*threads=*/1});
  Service base_service(base_lb.get(), {/*threads=*/1});
  auto reuse_session = OpenStreamSession(reuse_service, true);
  auto base_session = OpenStreamSession(base_service, false);
  for (int round = 0; round < 2 * kRounds; ++round) {
    if (toggle != nullptr) {
      const bool even = round % 2 == 0;
      const Status rs = even
                            ? reuse_service.Assert(toggle->pred, toggle->names)
                            : reuse_service.Retract(toggle->pred,
                                                    toggle->names);
      const Status bs = even
                            ? base_service.Assert(toggle->pred, toggle->names)
                            : base_service.Retract(toggle->pred,
                                                   toggle->names);
      if (!rs.ok() || !bs.ok()) {
        *diff = "update failed: " + rs.ToString() + " / " + bs.ToString();
        return false;
      }
    }
    for (const std::string& text : pool) {
      auto reuse_answer = reuse_session->Query(text);
      auto base_answer = base_session->Query(text);
      if (!reuse_answer.ok() || !base_answer.ok()) {
        *diff = "execution failed on: " + text;
        return false;
      }
      if (!(reuse_answer.value() == base_answer.value())) {
        *diff = "reuse and baseline answers diverge on: " + text;
        return false;
      }
    }
  }
  return true;
}

void ReportCacheCounters(benchmark::State& state, const Service& service) {
  const ServiceStats stats = service.stats();
  const double result_total =
      static_cast<double>(stats.result_hits + stats.result_misses);
  const double memo_total =
      static_cast<double>(stats.memo_row_hits + stats.memo_row_misses);
  state.counters["result_hit_rate"] =
      result_total > 0 ? static_cast<double>(stats.result_hits) / result_total
                       : 0.0;
  state.counters["memo_hit_rate"] =
      memo_total > 0 ? static_cast<double>(stats.memo_row_hits) / memo_total
                     : 0.0;
  state.counters["invalidations"] =
      static_cast<double>(stats.result_invalidations);
}

void StreamBench(benchmark::State& state, const std::vector<std::string>& pool,
                 bool reuse, bool with_updates) {
  const UpdateToggle toggle;
  const UpdateToggle* toggle_ptr = with_updates ? &toggle : nullptr;
  std::string diff;
  if (!StreamsAgree(pool, toggle_ptr, &diff)) {
    state.SkipWithError(diff.c_str());
    return;
  }
  auto lb = MakeStreamWorld();
  Service service(lb.get(), {/*threads=*/1});
  auto session = OpenStreamSession(service, reuse);
  // Warm the prepared-statement cache so both sides time execution, not
  // parsing.
  for (const std::string& text : pool) {
    auto info = session->Prepare(text);
    benchmark::DoNotOptimize(info);
  }
  for (auto _ : state) {
    if (!RunStream(service, *session, pool, kRounds, toggle_ptr)) {
      state.SkipWithError("stream execution failed");
      return;
    }
  }
  ReportCacheCounters(state, service);
  state.SetLabel(reuse ? "memo+result-cache" : "no reuse");
}

void BM_Repeated(benchmark::State& state, bool reuse) {
  StreamBench(state, ScenarioQueryPool(SparseParams()), reuse,
              /*with_updates=*/false);
}

// Perturbed: distinct texts, result cache off for BOTH sides (the pool
// repeats across benchmark iterations, and a cross-iteration result hit
// would turn this row back into `repeated`) — reuse here is the kernel
// memo alone.
void BM_Perturbed(benchmark::State& state, bool memo) {
  const std::vector<std::string> pool = PerturbedPool();
  std::string diff;
  if (!StreamsAgree(pool, nullptr, &diff)) {
    state.SkipWithError(diff.c_str());
    return;
  }
  auto lb = MakeStreamWorld();
  Service service(lb.get(), {/*threads=*/1});
  SessionOptions options;
  options.engine = "exact";
  options.use_result_cache = false;
  options.engine_options.exact.memo = memo;
  auto session = service.OpenSession(std::move(options)).value();
  for (const std::string& text : pool) {
    auto info = session->Prepare(text);
    benchmark::DoNotOptimize(info);
  }
  for (auto _ : state) {
    for (const std::string& text : pool) {
      auto answer = session->Query(text);
      if (!answer.ok()) {
        state.SkipWithError("stream execution failed");
        return;
      }
      benchmark::DoNotOptimize(answer);
    }
  }
  ReportCacheCounters(state, service);
  state.SetLabel(memo ? "kernel memo" : "no reuse");
}

void BM_Updates(benchmark::State& state, bool reuse) {
  StreamBench(state, ScenarioQueryPool(SparseParams()), reuse,
              /*with_updates=*/true);
}

BENCHMARK_CAPTURE(BM_Repeated, baseline, false)
    ->Name("BM_IncrementalStream/repeated/baseline")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Repeated, reuse, true)
    ->Name("BM_IncrementalStream/repeated/reuse")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Perturbed, baseline, false)
    ->Name("BM_IncrementalStream/perturbed/baseline")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Perturbed, reuse, true)
    ->Name("BM_IncrementalStream/perturbed/reuse")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Updates, baseline, false)
    ->Name("BM_IncrementalStream/updates/baseline")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Updates, reuse, true)
    ->Name("BM_IncrementalStream/updates/reuse")
    ->Unit(benchmark::kMillisecond);

/// One-shot wall-clock comparison of the three streams, printed before the
/// benchmark rows (the e9 model): reuse vs baseline seconds, the speedup,
/// and whether the two sides' answers agreed tuple for tuple.
void PrintStreamTable() {
  const ScenarioParams params = SparseParams();
  std::printf(
      "E11: incremental re-evaluation — kernel memo + result cache\n"
      "scenario world: %d known constants (%d facts/relation: most appear "
      "in no fact), %d unknown; %d+%d relations\n\n",
      params.num_known, params.facts_per_relation, params.num_unknown,
      params.num_unary, params.num_binary);
  struct Row {
    const char* stream;
    std::vector<std::string> pool;
    bool result_cache;
    bool updates;
  };
  const std::vector<Row> rows = {
      {"repeated", ScenarioQueryPool(params), true, false},
      {"perturbed", PerturbedPool(), false, false},
      {"updates", ScenarioQueryPool(params), true, true},
  };
  TablePrinter table({"stream", "baseline(s)", "reuse(s)", "speedup",
                      "answers agree"});
  for (const Row& row : rows) {
    const UpdateToggle toggle;
    const UpdateToggle* toggle_ptr = row.updates ? &toggle : nullptr;
    std::string diff;
    const bool agree = StreamsAgree(row.pool, toggle_ptr, &diff);
    double side_s[2] = {0, 0};
    for (int reuse = 0; reuse < 2; ++reuse) {
      auto lb = MakeStreamWorld();
      Service service(lb.get(), {/*threads=*/1});
      SessionOptions options;
      options.engine = "exact";
      options.use_result_cache = row.result_cache && reuse == 1;
      options.engine_options.exact.memo = reuse == 1;
      auto session = service.OpenSession(std::move(options)).value();
      for (const std::string& text : row.pool) {
        auto info = session->Prepare(text);
        benchmark::DoNotOptimize(info);
      }
      side_s[reuse] = Seconds([&] {
        if (!RunStream(service, *session, row.pool, 2 * kRounds,
                       toggle_ptr)) {
          std::fprintf(stderr, "E11 %s stream failed\n", row.stream);
        }
      });
    }
    table.AddRow({row.stream, FormatDouble(side_s[0], 4),
                  FormatDouble(side_s[1], 4),
                  FormatDouble(side_s[1] > 0 ? side_s[0] / side_s[1] : 0.0,
                               2) +
                      "x",
                  agree ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: the repeated stream should be >= 2x (result-cache\n"
      "hits after round one); perturbed isolates the kernel memo (result\n"
      "cache off on both sides); updates stays ahead of baseline because\n"
      "only queries reading the updated relation recompute.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintStreamTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
