// E4 — Theorems 11/12/13: soundness and completeness of the approximation.
//
// Sweeps the fraction of unknown values and measures, over a pool of random
// instances and both positive and non-positive queries:
//   * soundness violations (tuples returned but not certain) — Theorem 11
//     says this must be exactly 0, always;
//   * recall = |A(Q,LB)| / |Q(LB)| — Theorem 12 forces 1.0 at zero
//     unknowns and Theorem 13 forces 1.0 for positive queries; in between,
//     recall may drop below 1 on non-positive queries (the price of
//     polynomial time).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/approx/approx.h"
#include "lqdb/exact/exact.h"
#include "lqdb/logic/classify.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

struct Sample {
  size_t exact_size = 0;
  size_t possible_size = 0;
  size_t approx_size = 0;
  size_t violations = 0;
};

Sample Measure(int unknowns, uint64_t seed, const std::string& query_text) {
  auto lb = MakeOrgDatabase(/*known=*/7, unknowns, seed);
  Query q = MustParse(lb.get(), query_text);
  ExactEvaluator exact(lb.get());
  Relation exact_answer = exact.Answer(q).value();
  Relation possible_answer = exact.PossibleAnswer(q).value();
  auto approx = ApproxEvaluator::Make(lb.get()).value();
  Relation approx_answer = approx->Answer(q).value();
  Sample s;
  s.exact_size = exact_answer.size();
  s.possible_size = possible_answer.size();
  s.approx_size = approx_answer.size();
  for (const Tuple& t : approx_answer.tuples()) {
    if (!exact_answer.Contains(t)) ++s.violations;
  }
  return s;
}

void BM_ApproxOnPool(benchmark::State& state) {
  const int unknowns = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(7, unknowns, /*seed=*/3);
  std::vector<Query> pool;
  for (const std::string& text : OrgQueryPool()) {
    pool.push_back(MustParse(lb.get(), text));
  }
  auto approx = ApproxEvaluator::Make(lb.get()).value();
  for (auto _ : state) {
    for (const Query& q : pool) {
      auto answer = approx->Answer(q);
      benchmark::DoNotOptimize(answer);
    }
  }
}
BENCHMARK(BM_ApproxOnPool)->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

void BM_ExactOnPool(benchmark::State& state) {
  const int unknowns = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(7, unknowns, /*seed=*/3);
  std::vector<Query> pool;
  for (const std::string& text : OrgQueryPool()) {
    pool.push_back(MustParse(lb.get(), text));
  }
  ExactEvaluator exact(lb.get());
  for (auto _ : state) {
    for (const Query& q : pool) {
      auto answer = exact.Answer(q);
      benchmark::DoNotOptimize(answer);
    }
  }
}
BENCHMARK(BM_ExactOnPool)->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE4: soundness & completeness of the Section 5 approximation\n"
      "instances: 5 random org databases per row; query pool: %zu queries\n"
      "(positive and non-positive)\n\n",
      OrgQueryPool().size());
  TablePrinter table({"unknowns", "query class", "recall",
                      "soundness violations", "certain/possible"});
  for (int unknowns : {0, 1, 2, 3, 4}) {
    size_t exact_pos = 0, approx_pos = 0, viol_pos = 0, poss_pos = 0;
    size_t exact_neg = 0, approx_neg = 0, viol_neg = 0, poss_neg = 0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      for (const std::string& text : OrgQueryPool()) {
        auto lb = MakeOrgDatabase(7, unknowns, seed);
        Query q = MustParse(lb.get(), text);
        bool positive = IsPositive(q);
        Sample s = Measure(unknowns, seed, text);
        if (positive) {
          exact_pos += s.exact_size;
          approx_pos += s.approx_size;
          viol_pos += s.violations;
          poss_pos += s.possible_size;
        } else {
          exact_neg += s.exact_size;
          approx_neg += s.approx_size;
          viol_neg += s.violations;
          poss_neg += s.possible_size;
        }
      }
    }
    auto recall = [](size_t approx, size_t exact) {
      return exact == 0 ? 1.0
                        : static_cast<double>(approx) /
                              static_cast<double>(exact);
    };
    table.AddRow({std::to_string(unknowns), "positive",
                  FormatDouble(recall(approx_pos, exact_pos), 3),
                  std::to_string(viol_pos),
                  FormatDouble(recall(exact_pos, poss_pos), 3)});
    table.AddRow({std::to_string(unknowns), "non-positive",
                  FormatDouble(recall(approx_neg, exact_neg), 3),
                  std::to_string(viol_neg),
                  FormatDouble(recall(exact_neg, poss_neg), 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: violations are 0 everywhere (Thm 11); recall is "
      "1.000 for\npositive queries at every row (Thm 13) and for all "
      "queries at unknowns = 0\n(Thm 12); non-positive recall may dip "
      "below 1 as unknowns grow. The\n'certain/possible' column shows the "
      "information the nulls withhold: 1.000 at\nunknowns = 0, shrinking "
      "as the model set widens.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
