// E6 — §5 closing remark: the virtual NE relation.
//
// "In general it is impractical to have NE explicitly contain all pairs of
// values we know are distinct, since then its size could be up to quadratic
// in the number of values in the database." The fix is the virtual view
//
//     NE(x, y) ≡ NE'(x, y) ∨ (¬U(x) ∧ ¬U(y) ∧ ¬(x = y)).
//
// This bench sweeps the database size and compares stored-tuple counts and
// query latency for materialized vs virtual NE.
//
// Expected shape: materialized storage grows quadratically while virtual
// storage grows with |U| + |NE'| only; query times stay comparable.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

// A query whose transform leans on NE: provably-distinct employee pairs in
// the same department.
const char* kQuery =
    "(x, y) . exists d. EMP_DEPT(x, d) & EMP_DEPT(y, d) & x != y";

void BM_VirtualNe(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(known, /*unknowns=*/2, /*seed=*/9);
  Query q = MustParse(lb.get(), kQuery);
  ApproxOptions options;
  options.materialize_ne = false;
  auto approx = ApproxEvaluator::Make(lb.get(), options).value();
  for (auto _ : state) {
    auto answer = approx->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_VirtualNe)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);

void BM_MaterializedNe(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(known, /*unknowns=*/2, /*seed=*/9);
  Query q = MustParse(lb.get(), kQuery);
  ApproxOptions options;
  options.materialize_ne = true;
  auto approx = ApproxEvaluator::Make(lb.get(), options).value();
  for (auto _ : state) {
    auto answer = approx->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_MaterializedNe)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);

void BM_MaterializeNeConstruction(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto lb = MakeOrgDatabase(known, 2, 9);
    state.ResumeTiming();
    Ph2Options options;
    options.materialize_ne = true;
    auto ph2 = MakePh2(lb.get(), options);
    benchmark::DoNotOptimize(ph2);
  }
}
BENCHMARK(BM_MaterializeNeConstruction)
    ->RangeMultiplier(2)->Range(8, 64)->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE6: virtual vs materialized NE (Section 5 closing remark)\n"
      "2 unknown values; uniqueness axioms otherwise implicit between all\n"
      "known constants\n\n");
  TablePrinter table({"constants", "NE tuples stored (mat.)",
                      "stored (virtual)", "mat(s)", "virtual(s)",
                      "answers equal"});
  for (int known : {8, 16, 32, 64, 128}) {
    auto lb = MakeOrgDatabase(known, 2, 9);
    Query q = MustParse(lb.get(), kQuery);

    ApproxOptions mat;
    mat.materialize_ne = true;
    auto approx_mat = ApproxEvaluator::Make(lb.get(), mat).value();
    Relation mat_answer(0);
    double mat_s = Seconds([&] {
      mat_answer = approx_mat->Answer(q).value();
    });
    size_t mat_tuples =
        approx_mat->ph2().db.relation(approx_mat->ph2().ne).size();

    ApproxOptions virt;
    virt.materialize_ne = false;
    auto approx_virt = ApproxEvaluator::Make(lb.get(), virt).value();
    Relation virt_answer(0);
    double virt_s = Seconds([&] {
      virt_answer = approx_virt->Answer(q).value();
    });
    size_t virt_tuples = 2 * lb->explicit_distinct().size() +
                         lb->UnknownConstants().size();

    table.AddRow({std::to_string(lb->num_constants()),
                  std::to_string(mat_tuples), std::to_string(virt_tuples),
                  FormatDouble(mat_s, 4), FormatDouble(virt_s, 4),
                  mat_answer == virt_answer ? "yes" : "NO"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: materialized NE tuples grow ~quadratically with the\n"
      "constants; the virtual representation stores only U and NE'.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
