// E10 — Large-world joins: the compiled RA engine vs the batched Tarskian
// sweep where the per-image inner loop actually dominates.
//
// The E8 Theorem 1 rows use toy worlds (9 constants, ~20 facts) where the
// canonical-mapping enumeration is the cost; at that size a compiled plan
// can only about break even with the batched evaluator. E10 generates
// scenario worlds (lqdb/gen/scenario.h) one to two orders of magnitude
// bigger in relational volume — tens of constants, hundreds to thousands
// of facts — while keeping only two unknown constants, so the mapping
// count stays in the thousands and the per-image query evaluation is the
// bottleneck. This is the regime the flat arena tables, the join-order DP
// and the semijoin reduction were built for, and the in-snapshot table
// below is the gate for routing the default `exact` engine to the
// compiled path.
//
// Row naming: "BM_LargeWorld/exact/..." vs "BM_LargeWorld/ra-exact/..."
// form a pairable name pair for `tools/collect_bench.py`. The `exact`
// rows are constructed from the registry's "batched-exact" entry — the
// batched Tarskian sweep under its explicit name — so the rows keep
// measuring the same baseline across snapshots even now that the plain
// "exact" name routes to the compiled engine.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/engine/engine.h"
#include "lqdb/gen/scenario.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

ScenarioParams ScaleParams(int scale) {
  ScenarioParams p;
  p.num_unknown = 2;
  switch (scale) {
    case 0:  // "large": ~10x the differential toy worlds
      p.num_known = 32;
      p.facts_per_relation = 256;
      break;
    default:  // "xl": ~100x
      p.num_known = 64;
      p.facts_per_relation = 1024;
      break;
  }
  return p;
}

const char* ScaleName(int scale) { return scale == 0 ? "large" : "xl"; }

// The join-heavy subset of the scenario pool: a guarded universal (join +
// anti-join per image), a three-join chain with a binary head, and the
// five-conjunct wide conjunction the join-order DP reorders.
std::vector<std::string> JoinQueries() {
  std::vector<std::string> pool = ScenarioQueryPool(ScenarioParams{});
  return {pool[2], pool[4], pool[5]};
}

void LargeWorldEngine(benchmark::State& state, const char* engine_name) {
  const int scale = static_cast<int>(state.range(0));
  const int query_idx = static_cast<int>(state.range(1));
  const ScenarioParams params = ScaleParams(scale);
  auto lb = MakeScenario(/*seed=*/7, params);
  Query q = MustParse(lb.get(), JoinQueries()[query_idx]);
  auto engine = EngineRegistry::Global().Create(engine_name, lb.get()).value();
  for (auto _ : state) {
    auto answer = engine->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
  state.counters["mappings"] =
      static_cast<double>(engine->last_mappings_examined());
  state.SetLabel(std::string(ScaleName(scale)) + " world, " +
                 JoinQueries()[query_idx]);
}
void BM_LargeWorldExact(benchmark::State& state) {
  LargeWorldEngine(state, "batched-exact");
}
void BM_LargeWorldRaExact(benchmark::State& state) {
  LargeWorldEngine(state, "ra-exact");
}
// The binary-head chain sweeps |C|² candidates, so it only runs at the
// large scale — at xl the batched baseline alone takes minutes.
BENCHMARK(BM_LargeWorldExact)->Name("BM_LargeWorld/exact")
    ->ArgsProduct({{0}, {0, 1, 2}})->ArgsProduct({{1}, {0, 2}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LargeWorldRaExact)->Name("BM_LargeWorld/ra-exact")
    ->ArgsProduct({{0}, {0, 1, 2}})->ArgsProduct({{1}, {0, 2}})
    ->Unit(benchmark::kMillisecond);

// The in-snapshot comparison table: per (scale, query), both engines'
// certain-answer time, the speedup, and an answer-agreement check — the
// printed evidence behind routing `exact` to the compiled path.
void PrintLargeWorldTable() {
  std::printf(
      "E10: large-world joins — batched Tarskian sweep vs compiled RA\n\n");
  TablePrinter table({"scale", "query", "batched(s)", "ra(s)", "speedup",
                      "answers agree"});
  const std::vector<std::string> queries = JoinQueries();
  for (int scale : {0, 1}) {
    const ScenarioParams params = ScaleParams(scale);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      if (scale == 1 && qi == 1) continue;  // |C|² candidates: large only
      auto lb = MakeScenario(/*seed=*/7, params);
      Query q = MustParse(lb.get(), queries[qi]);
      auto batched =
          EngineRegistry::Global().Create("batched-exact", lb.get()).value();
      auto ra = EngineRegistry::Global().Create("ra-exact", lb.get()).value();
      Relation batched_answer(0), ra_answer(0);
      double batched_s =
          Seconds([&] { batched_answer = batched->Answer(q).value(); });
      double ra_s = Seconds([&] { ra_answer = ra->Answer(q).value(); });
      table.AddRow({ScaleName(scale), queries[qi],
                    FormatDouble(batched_s, 4), FormatDouble(ra_s, 4),
                    FormatDouble(ra_s > 0 ? batched_s / ra_s : 0.0, 2) + "x",
                    batched_answer == ra_answer ? "yes" : "NO"});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: identical answers; the ra rows pull ahead as the\n"
      "world grows — the compiled plan pays one join pass per image while\n"
      "the batched sweep pays a quantifier loop per candidate per image.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintLargeWorldTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
