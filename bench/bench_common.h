#ifndef LQDB_BENCH_BENCH_COMMON_H_
#define LQDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "lqdb/cwdb/cw_database.h"
#include "lqdb/logic/parser.h"
#include "lqdb/logic/query.h"
#include "lqdb/util/rng.h"

namespace lqdb {
namespace bench {

/// Wall-clock seconds of `fn()` (single shot; the google-benchmark
/// registrations handle statistically careful timing — these are for the
/// paper-style summary tables).
template <typename Fn>
double Seconds(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// A synthetic personnel database in the spirit of the paper's examples:
/// employees with departments and managers, where `unknowns` of the
/// department records are unresolved (null) values.
///
/// Shape: `known` known constants split between employees/departments, one
/// EMP_DEPT fact per employee, one DEPT_MGR fact per department, and
/// `unknowns` employees assigned to anonymous departments.
inline std::unique_ptr<CwDatabase> MakeOrgDatabase(int known, int unknowns,
                                                   uint64_t seed) {
  Rng rng(seed);
  auto lb = std::make_unique<CwDatabase>();
  // Anonymous departments first so that their ids stay stable.
  std::vector<ConstId> anon;
  for (int i = 0; i < unknowns; ++i) {
    anon.push_back(lb->AddUnknownConstant("AnonDept" + std::to_string(i)));
  }
  const int num_depts = std::max(2, known / 4);
  std::vector<ConstId> depts;
  for (int i = 0; i < num_depts; ++i) {
    depts.push_back(lb->AddKnownConstant("Dept" + std::to_string(i)));
  }
  std::vector<ConstId> emps;
  const int num_emps = std::max(1, known - num_depts);
  for (int i = 0; i < num_emps; ++i) {
    emps.push_back(lb->AddKnownConstant("Emp" + std::to_string(i)));
  }
  PredId emp_dept = lb->AddPredicate("EMP_DEPT", 2).value();
  PredId dept_mgr = lb->AddPredicate("DEPT_MGR", 2).value();
  PredId senior = lb->AddPredicate("SENIOR", 1).value();
  for (size_t i = 0; i < emps.size(); ++i) {
    ConstId dept;
    if (i < anon.size()) {
      dept = anon[i];  // the first few employees sit in unresolved depts
    } else {
      dept = depts[rng.Below(depts.size())];
    }
    (void)lb->AddFact(emp_dept, {emps[i], dept});
    if (rng.Chance(0.4)) (void)lb->AddFact(senior, {emps[i]});
  }
  for (ConstId d : depts) {
    (void)lb->AddFact(dept_mgr, {d, emps[rng.Below(emps.size())]});
  }
  return lb;
}

/// A pool of queries over the MakeOrgDatabase schema, mixing positive and
/// negative shapes. All are arity-1.
inline std::vector<std::string> OrgQueryPool() {
  return {
      // Positive: who has a manager through their department?
      "(x) . exists d m. EMP_DEPT(x, d) & DEPT_MGR(d, m)",
      // Negative atom: seniors provably not managing any department.
      "(x) . SENIOR(x) & !(exists d. DEPT_MGR(d, x))",
      // Negated equality under quantifiers.
      "(x) . exists d. EMP_DEPT(x, d) & "
      "(forall e. EMP_DEPT(e, d) -> e = x | e != x)",
      // Departments with no senior members.
      "(d) . (exists e. EMP_DEPT(e, d)) & "
      "!(exists e. EMP_DEPT(e, d) & SENIOR(e))",
  };
}

inline Query MustParse(CwDatabase* lb, const std::string& text) {
  auto q = ParseQuery(lb->mutable_vocab(), text);
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return std::move(q).value();
}

/// Initializes and runs google-benchmark with a short default
/// `--benchmark_min_time` (the E-series binaries are run back to back by
/// the harness); any flag passed on the command line wins.
///
/// Machine-readable output: when the environment variable
/// `LQDB_BENCH_JSON_DIR` is set (and the caller did not pass an explicit
/// `--benchmark_out`), each binary also writes
/// `$LQDB_BENCH_JSON_DIR/<binary>.json` in google-benchmark's JSON format
/// while keeping the console reporter on stdout. `tools/collect_bench.py`
/// merges those files into a single `BENCH_<pr>.json` so the perf
/// trajectory is tracked across PRs.
inline void RunBenchmarks(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_min_time = false;
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_min_time", 20) == 0) {
      has_min_time = true;
    }
    // Match only the out-file flag itself; `--benchmark_out_format=...`
    // alone must not suppress the env-driven JSON file.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  static char default_min_time[] = "--benchmark_min_time=0.05";
  if (!has_min_time) args.push_back(default_min_time);

  // The strings backing argv must outlive Initialize.
  static std::string out_flag, out_format_flag;
  const char* json_dir = std::getenv("LQDB_BENCH_JSON_DIR");
  if (json_dir != nullptr && *json_dir != '\0' && !has_out) {
    std::string binary = argv[0];
    size_t slash = binary.find_last_of('/');
    if (slash != std::string::npos) binary = binary.substr(slash + 1);
    out_flag = "--benchmark_out=" + std::string(json_dir) + "/" + binary +
               ".json";
    out_format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(out_format_flag.data());
  }

  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
}

}  // namespace bench
}  // namespace lqdb

#endif  // LQDB_BENCH_BENCH_COMMON_H_
