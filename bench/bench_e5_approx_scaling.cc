// E5 — Theorem 14: the approximation has *physical* data complexity.
//
// With the §5 algorithm, logical query evaluation costs the same (up to a
// constant) as evaluating the transformed query over an ordinary physical
// database: the α_P subformulas are decided in polynomial time and NE is a
// virtual relation. This bench grows the database (with unknowns present —
// the regime where exact evaluation is exponential) and compares the
// approximate evaluator against plain physical evaluation of the same
// query over Ph₁.
//
// Expected shape: both columns grow polynomially. The ratio grows at most
// polynomially too (each α_P probe scans the stored facts of P — the
// polynomial price Theorem 14 allows), in sharp contrast with the
// exponential blow-up of exact evaluation in E1.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/approx/approx.h"
#include "lqdb/cwdb/ph.h"
#include "lqdb/eval/evaluator.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

const char* kQuery = "(x) . SENIOR(x) & !(exists d. DEPT_MGR(d, x))";
constexpr int kUnknowns = 3;

void BM_ApproxEval(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(known, kUnknowns, /*seed=*/5);
  Query q = MustParse(lb.get(), kQuery);
  auto approx = ApproxEvaluator::Make(lb.get()).value();
  for (auto _ : state) {
    auto answer = approx->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ApproxEval)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

void BM_PhysicalBaseline(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(known, kUnknowns, /*seed=*/5);
  Query q = MustParse(lb.get(), kQuery);
  PhysicalDatabase ph1 = MakePh1(*lb);
  Evaluator eval(&ph1);
  for (auto _ : state) {
    auto answer = eval.Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_PhysicalBaseline)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

void BM_ApproxViaRelationalAlgebra(benchmark::State& state) {
  const int known = static_cast<int>(state.range(0));
  auto lb = MakeOrgDatabase(known, kUnknowns, /*seed=*/5);
  Query q = MustParse(lb.get(), kQuery);
  ApproxOptions options;
  options.engine = ApproxEngine::kRelationalAlgebra;
  auto approx = ApproxEvaluator::Make(lb.get(), options).value();
  for (auto _ : state) {
    auto answer = approx->Answer(q);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ApproxViaRelationalAlgebra)
    ->RangeMultiplier(2)->Range(8, 128)->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE5: approximate logical evaluation scales like physical "
      "evaluation (Theorem 14)\n"
      "query: %s\n%d unknown values present at every size\n\n",
      kQuery, kUnknowns);
  TablePrinter table({"known constants", "facts", "approx(s)",
                      "physical(s)", "ratio", "ra-engine(s)"});
  for (int known : {8, 16, 32, 64, 128}) {
    auto lb = MakeOrgDatabase(known, kUnknowns, 5);
    Query q = MustParse(lb.get(), kQuery);
    const size_t facts = lb->NumFacts();

    auto approx = ApproxEvaluator::Make(lb.get()).value();
    double approx_s = Seconds([&] { (void)approx->Answer(q); });

    PhysicalDatabase ph1 = MakePh1(*lb);
    Evaluator eval(&ph1);
    double physical_s = Seconds([&] { (void)eval.Answer(q); });

    ApproxOptions ra;
    ra.engine = ApproxEngine::kRelationalAlgebra;
    auto approx_ra = ApproxEvaluator::Make(lb.get(), ra).value();
    double ra_s = Seconds([&] { (void)approx_ra->Answer(q); });

    table.AddRow({std::to_string(known), std::to_string(facts),
                  FormatDouble(approx_s, 4), FormatDouble(physical_s, 4),
                  FormatDouble(approx_s / std::max(physical_s, 1e-9), 2),
                  FormatDouble(ra_s, 4)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nshape check: 'approx(s)' grows polynomially and 'ratio' tracks "
      "the fact\ncount (the polynomial alpha_P probe cost) — no trace of "
      "the exponential in E1.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
