// E2 — Theorem 5(2): graph 3-colorability as CW query evaluation.
//
// The co-NP-hardness reduction is executable: a graph maps (in logspace)
// to a logical database plus a fixed Boolean query whose *non*-certainty
// is 3-colorability. This bench runs the reduction against a direct
// backtracking solver on a graph family sweep.
//
// Expected shape: answers agree on every instance; the logical route pays
// the mapping-enumeration premium, growing with vertex count — and pays
// the most on non-3-colorable instances, where no early counterexample
// exists (the co-NP "all mappings" worst case).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "lqdb/exact/exact.h"
#include "lqdb/reductions/coloring.h"
#include "lqdb/reductions/graph.h"
#include "lqdb/util/table.h"

namespace {

using namespace lqdb;
using namespace lqdb::bench;

Graph MakeGraph(int family, int n) {
  switch (family) {
    case 0: return CycleGraph(n);
    case 1: return CompleteGraph(n);
    default: return RandomGraph(n, 0.5, 7 + n);
  }
}

const char* FamilyName(int family) {
  switch (family) {
    case 0: return "cycle";
    case 1: return "complete";
    default: return "G(n,1/2)";
  }
}

void BM_ReductionDecides(benchmark::State& state) {
  Graph g = MakeGraph(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  auto red = BuildColoringReduction(g).value();
  ExactEvaluator exact(&red.lb);
  bool colorable = false;
  for (auto _ : state) {
    auto certain = exact.Contains(red.query, {});
    colorable = !certain.value();
    benchmark::DoNotOptimize(certain);
  }
  state.counters["colorable"] = colorable ? 1 : 0;
  state.counters["mappings"] =
      static_cast<double>(exact.last_mappings_examined());
}
BENCHMARK(BM_ReductionDecides)
    ->ArgsProduct({{0}, {4, 5, 6, 7, 8, 9}})
    ->ArgsProduct({{1}, {3, 4}})
    ->ArgsProduct({{2}, {4, 5, 6}})
    ->Unit(benchmark::kMillisecond);

void BM_DirectSolver(benchmark::State& state) {
  Graph g = MakeGraph(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  for (auto _ : state) {
    bool colorable = IsKColorable(g, 3);
    benchmark::DoNotOptimize(colorable);
  }
}
BENCHMARK(BM_DirectSolver)
    ->ArgsProduct({{0}, {4, 5, 6, 7, 8, 9}})
    ->ArgsProduct({{1}, {3, 4}})
    ->ArgsProduct({{2}, {4, 5, 6}})
    ->Unit(benchmark::kMillisecond);

void PrintSummaryTable() {
  std::printf(
      "\nE2: 3-colorability via the Theorem 5(2) reduction\n"
      "query: () . (forall y. M(y)) -> exists z. R(z, z)\n\n");
  TablePrinter table({"graph", "n", "edges", "reduction", "solver", "agree",
                      "mappings", "logic(s)", "solver(s)"});
  struct Row {
    int family;
    int n;
  };
  const Row rows[] = {{0, 4}, {0, 5}, {0, 7}, {0, 9}, {1, 3}, {1, 4},
                      {2, 4}, {2, 5}, {2, 6}, {2, 7}};
  for (const Row& row : rows) {
    Graph g = MakeGraph(row.family, row.n);
    auto red = BuildColoringReduction(g).value();
    ExactEvaluator exact(&red.lb);
    bool by_logic = false;
    double logic_s = Seconds([&] {
      by_logic = !exact.Contains(red.query, {}).value();
    });
    bool by_solver = false;
    double solver_s = Seconds([&] { by_solver = IsKColorable(g, 3); });
    table.AddRow({FamilyName(row.family), std::to_string(row.n),
                  std::to_string(g.num_edges()),
                  by_logic ? "3-colorable" : "NOT 3-colorable",
                  by_solver ? "3-colorable" : "NOT 3-colorable",
                  by_logic == by_solver ? "yes" : "NO",
                  std::to_string(exact.last_mappings_examined()),
                  FormatDouble(logic_s, 4), FormatDouble(solver_s, 4)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nshape check: 'agree' is yes everywhere; non-colorable rows"
              " (K4, dense random)\nexamine every mapping — the co-NP worst"
              " case.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintSummaryTable();
  lqdb::bench::RunBenchmarks(argc, argv);
  return 0;
}
